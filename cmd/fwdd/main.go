// Command fwdd runs a real I/O forwarding server (internal/core) on a TCP
// address — the role of the ION-side daemon.
//
//	fwdd -listen :7070 -mode async -workers 4 -bml 256 -backend file -root /tmp/fwd
//	fwdd -listen :7070 -mode direct -backend null
//	fwdd -listen :7070 -metrics :9090   # Prometheus /metrics + JSON /statz
//
// Fault tolerance and chaos:
//
//	fwdd -queue-hw 4096          # shed data ops with EAGAIN past this queue depth
//	fwdd -bml-timeout 2s         # degrade writes to the sync path on BML exhaustion
//	fwdd -fault err=0.01,lat=0.05:5ms,stall=0.001:250ms,short=0.005,panic=1000,seed=42
//
// Crash-safe burst spill (internal/wal): writes that miss BML admission are
// appended to a local write-ahead log and acknowledged instead of degrading
// to the synchronous path; on startup surviving records are replayed before
// the daemon listens. -crash SIGKILLs the process at a named WAL crash
// point for recovery drills.
//
//	fwdd -bml-timeout 20ms -wal-dir /tmp/fwd-wal -wal-sync always
//	fwdd -wal-dir /tmp/fwd-wal -crash after-append:3
//
// Striped + replicated multi-backend tier (internal/stripetier):
//
//	fwdd -backends mem,mem,mem,mem -replicas 2 -stripe-size 65536
//	fwdd -backends /data/a,/data/b,/data/c -replicas 2
//	fwdd -backends mem,mem,mem,mem -fault "seed=7;member=2:eio=1,from=10,until=40"
//
// Each -backends token is "mem", "null", or a directory path; -fault member
// sections scope chaos to one member so failover and repair can be drilled
// deterministically.
//
// On SIGINT/SIGTERM the daemon stops accepting, drains the work queue
// (flushing staged writes), prints a final metrics snapshot to stderr, and
// exits.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strings"

	"path/filepath"

	"repro/internal/core"
	"repro/internal/core/fault"
	"repro/internal/stripetier"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "address to listen on")
	mode := flag.String("mode", "async", "execution model: direct | workqueue | async")
	workers := flag.Int("workers", 4, "worker pool size (paper default: 4)")
	shards := flag.Int("shards", 0, "scheduler shard count (0 = one per worker, capped at GOMAXPROCS)")
	batch := flag.Int("batch", 8, "tasks dequeued per worker wakeup")
	bmlMiB := flag.Int64("bml", 256, "staging memory cap in MiB")
	backendKind := flag.String("backend", "mem", "backend: mem | null | file | sink")
	root := flag.String("root", ".", "root directory for -backend file")
	sinkMiBps := flag.Int64("sink-rate", 100, "bandwidth in MiB/s for -backend sink")
	metricsAddr := flag.String("metrics", "", "address for the observability HTTP listener serving /metrics (Prometheus text) and /statz (JSON); empty disables")
	queueHW := flag.Int("queue-hw", 0, "work-queue high-water mark: shed data ops with EAGAIN past this depth (0 disables)")
	bmlTimeout := flag.Duration("bml-timeout", 0, "staging-pool admission timeout: past it writes degrade to the synchronous path (0 blocks forever)")
	faultSpec := flag.String("fault", "", "chaos backend spec, e.g. err=0.01,lat=0.05:5ms,stall=0.001:250ms,short=0.005,panic=1000,seed=42; with -backends, ';'-separated member=N: sections scope faults to one member (empty disables)")
	backendList := flag.String("backends", "", "comma-separated striped-tier members (each: mem | null | directory path); overrides -backend")
	stripeSize := flag.Int64("stripe-size", 64<<10, "striping unit in bytes for -backends")
	replicas := flag.Int("replicas", 2, "replicas per stripe for -backends (capped at the member count)")
	ejectAfter := flag.Int("eject-after", 0, "consecutive member errors before ejection (0 = stripetier default)")
	probeBackoff := flag.Int64("probe-backoff", 0, "tier ops an ejected member waits before its first half-open probe; doubles per failed probe (0 = stripetier default)")
	walDir := flag.String("wal-dir", "", "directory for the write-ahead spill tier: writes that miss BML admission are logged there and drained asynchronously; surviving records are replayed on startup (empty disables)")
	walSync := flag.String("wal-sync", wal.SyncInterval, "WAL fsync policy: always | interval | never")
	walSegment := flag.Int64("wal-segment", 8<<20, "WAL segment rotation size in bytes")
	walMax := flag.Int64("wal-max", 0, "cap on WAL bytes awaiting drain; past it spills degrade to the sync path (0 = unlimited)")
	walGroup := flag.Bool("wal-group", true, "group commit: batch concurrent spill appends into one fsync under -wal-sync always (no effect on other policies)")
	walGroupLinger := flag.Duration("wal-group-linger", 200*time.Microsecond, "how long a group-commit leader waits for followers when traffic is concurrent")
	walGroupBytes := flag.Int64("wal-group-bytes", 1<<20, "seal a group-commit batch once its frames reach this size")
	crashSpec := flag.String("crash", "", "deterministic crash points for recovery drills, e.g. after-append:3,before-truncate:1 — SIGKILLs the process at the Nth hit (needs -wal-dir)")
	flag.Parse()

	var m core.Mode
	switch *mode {
	case "direct":
		m = core.ModeDirect
	case "workqueue":
		m = core.ModeWorkQueue
	case "async":
		m = core.ModeAsync
	default:
		fmt.Fprintf(os.Stderr, "fwdd: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	reg := telemetry.NewRegistry()
	baseFault, memberFaults, err := fault.ParseMulti(*faultSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fwdd: %v\n", err)
		os.Exit(2)
	}

	var backend core.Backend
	var tier *stripetier.Tier
	if *backendList != "" {
		tokens := strings.Split(*backendList, ",")
		members := make([]core.Backend, 0, len(tokens))
		for i, tok := range tokens {
			tok = strings.TrimSpace(tok)
			member, err := memberBackend(tok)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fwdd: -backends member %d: %v\n", i, err)
				os.Exit(2)
			}
			if *faultSpec != "" {
				// Every member gets its own seeded chaos wrapper: explicit
				// member=N: sections win, the rest inherit the base spec
				// under a derived seed so no two members share a schedule.
				cfg, ok := memberFaults[i]
				if !ok {
					cfg = baseFault
					cfg.Seed = fault.DeriveSeed(baseFault.Seed, i)
				}
				fb := fault.New(member, cfg)
				fb.Register(reg, telemetry.L("member", fmt.Sprint(i)))
				member = fb
			}
			members = append(members, member)
		}
		pendingJournal := ""
		if *walDir != "" {
			// The pending set shares the WAL directory: one local durable
			// area for everything that must survive a restart.
			if err := os.MkdirAll(*walDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "fwdd: wal dir: %v\n", err)
				os.Exit(2)
			}
			pendingJournal = filepath.Join(*walDir, "stripe-pending.journal")
		}
		tier, err = stripetier.New(members, stripetier.Config{
			StripeSize: *stripeSize,
			Replicas:   *replicas,
			Health: stripetier.HealthConfig{
				MaxConsecutiveErrs: *ejectAfter,
				ProbeBackoffOps:    *probeBackoff,
			},
			PendingJournal: pendingJournal,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fwdd: %v\n", err)
			os.Exit(2)
		}
		tier.Register(reg)
		backend = tier
		if *faultSpec != "" {
			log.Printf("fwdd: chaos enabled across %d members: %s", len(members), *faultSpec)
		}
		log.Printf("fwdd: striped tier: %d members, %d replicas, %d B stripes",
			tier.Members(), *replicas, *stripeSize)
	} else {
		if len(memberFaults) > 0 {
			fmt.Fprintln(os.Stderr, "fwdd: -fault member sections need -backends")
			os.Exit(2)
		}
		switch *backendKind {
		case "mem":
			backend = core.NewMemBackend()
		case "null":
			backend = core.NullBackend{}
		case "file":
			backend = core.NewFileBackend(*root)
		case "sink":
			backend = core.NewSinkBackend(core.NewMemBackend(), *sinkMiBps<<20, 0)
		default:
			fmt.Fprintf(os.Stderr, "fwdd: unknown backend %q\n", *backendKind)
			os.Exit(2)
		}
		if *faultSpec != "" {
			fb := fault.New(backend, baseFault)
			fb.Register(reg)
			backend = fb
			log.Printf("fwdd: chaos backend enabled: %s", *faultSpec)
		}
	}

	// The write-ahead spill tier opens — and replays any surviving records
	// from a previous incarnation — before the daemon listens, so no client
	// can observe pre-recovery state.
	var spill *wal.Log
	if *walDir != "" {
		cs, err := fault.ParseCrash(*crashSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fwdd: %v\n", err)
			os.Exit(2)
		}
		var crash func(string)
		if cs.Armed() {
			crash = cs.Fire
			log.Printf("fwdd: crash points armed: %s", *crashSpec)
		}
		walCfg := wal.Config{
			Dir:           *walDir,
			Backend:       backend,
			SegmentBytes:  *walSegment,
			Sync:          *walSync,
			MaxBytes:      *walMax,
			Crash:         crash,
			GroupCommit:   *walGroup,
			GroupLinger:   *walGroupLinger,
			GroupMaxBytes: *walGroupBytes,
		}
		if tier != nil {
			// Drain-into-repair: a spilled record whose drain or recovery
			// replay fails against the tier marks the affected stripes'
			// whole replica chains stale, so the repair loop converges them
			// without a second discovery pass.
			walCfg.DrainFailed = func(name string, off int64, n int) {
				tier.EnqueueRepair(name, off, int64(n))
			}
		}
		lg, rstats, err := wal.Open(walCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fwdd: wal: %v\n", err)
			os.Exit(2)
		}
		lg.Register(reg)
		spill = lg
		if rstats.Segments > 0 {
			log.Printf("fwdd: wal recovery: %d segments scanned, %d records replayed, %d torn tails discarded, %d apply errors",
				rstats.Segments, rstats.Replayed, rstats.Torn, rstats.Errors)
		}
		group := "off"
		if *walGroup && *walSync == wal.SyncAlways {
			group = fmt.Sprintf("on (linger=%s, batch<=%d B)", *walGroupLinger, *walGroupBytes)
		}
		log.Printf("fwdd: wal spill tier at %s (sync=%s, segment=%d B, group-commit %s)", *walDir, *walSync, *walSegment, group)
	} else if *crashSpec != "" {
		fmt.Fprintln(os.Stderr, "fwdd: -crash needs -wal-dir")
		os.Exit(2)
	}

	cfg := core.Config{
		Mode:           m,
		Workers:        *workers,
		Shards:         *shards,
		Batch:          *batch,
		BMLBytes:       *bmlMiB << 20,
		Backend:        backend,
		Metrics:        reg,
		QueueHighWater: *queueHW,
		BMLTimeout:     *bmlTimeout,
	}
	if spill != nil {
		cfg.Spill = spill
	}
	srv := core.NewServer(cfg)
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.Metrics().Handler())
		mux.Handle("/statz", srv.Metrics().StatzHandler())
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("fwdd: metrics listener: %v", err)
		}
		log.Printf("fwdd: serving /metrics and /statz on %s", ml.Addr())
		go func() {
			if err := http.Serve(ml, mux); err != nil {
				log.Printf("fwdd: metrics server: %v", err)
			}
		}()
	}

	// Graceful shutdown: stop accepting, let the worker pool drain the work
	// queue (which flushes staged writes), then dump a final snapshot.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("fwdd: %v: stopping accept loop and draining staged writes", sig)
		if err := srv.Close(); err != nil {
			log.Printf("fwdd: close: %v", err)
		}
	}()

	kind := *backendKind
	if tier != nil {
		kind = fmt.Sprintf("striped[%d]", tier.Members())
	}
	log.Printf("fwdd: %s mode, %d workers, %d MiB BML, %s backend, listening on %s",
		m, *workers, *bmlMiB, kind, l.Addr())
	if err := srv.Serve(l); err != nil {
		log.Fatal(err)
	}
	if spill != nil {
		// Drain every spilled record to the backend before the tier (and
		// the process) goes away.
		if err := spill.Close(); err != nil {
			log.Printf("fwdd: wal close: %v", err)
		}
	}
	if tier != nil {
		_ = tier.Close()
	}
	fmt.Fprintln(os.Stderr, "fwdd: final metrics snapshot:")
	if err := srv.Metrics().WritePrometheus(os.Stderr); err != nil {
		log.Printf("fwdd: snapshot: %v", err)
	}
	log.Print("fwdd: shutdown complete")
}

// memberBackend builds one striped-tier member from a -backends token:
// "mem", "null", or a directory path for a file backend.
func memberBackend(tok string) (core.Backend, error) {
	switch tok {
	case "":
		return nil, fmt.Errorf("empty member token")
	case "mem":
		return core.NewMemBackend(), nil
	case "null":
		return core.NullBackend{}, nil
	default:
		if err := os.MkdirAll(tok, 0o755); err != nil {
			return nil, fmt.Errorf("member directory %q: %w", tok, err)
		}
		return core.NewFileBackend(tok), nil
	}
}
