// Command fwdd runs a real I/O forwarding server (internal/core) on a TCP
// address — the role of the ION-side daemon.
//
//	fwdd -listen :7070 -mode async -workers 4 -bml 256 -backend file -root /tmp/fwd
//	fwdd -listen :7070 -mode direct -backend null
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"repro/internal/core"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "address to listen on")
	mode := flag.String("mode", "async", "execution model: direct | workqueue | async")
	workers := flag.Int("workers", 4, "worker pool size (paper default: 4)")
	batch := flag.Int("batch", 8, "tasks dequeued per worker wakeup")
	bmlMiB := flag.Int64("bml", 256, "staging memory cap in MiB")
	backendKind := flag.String("backend", "mem", "backend: mem | null | file | sink")
	root := flag.String("root", ".", "root directory for -backend file")
	sinkMiBps := flag.Int64("sink-rate", 100, "bandwidth in MiB/s for -backend sink")
	flag.Parse()

	var m core.Mode
	switch *mode {
	case "direct":
		m = core.ModeDirect
	case "workqueue":
		m = core.ModeWorkQueue
	case "async":
		m = core.ModeAsync
	default:
		fmt.Fprintf(os.Stderr, "fwdd: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	var backend core.Backend
	switch *backendKind {
	case "mem":
		backend = core.NewMemBackend()
	case "null":
		backend = core.NullBackend{}
	case "file":
		backend = core.NewFileBackend(*root)
	case "sink":
		backend = core.NewSinkBackend(core.NewMemBackend(), *sinkMiBps<<20, 0)
	default:
		fmt.Fprintf(os.Stderr, "fwdd: unknown backend %q\n", *backendKind)
		os.Exit(2)
	}

	srv := core.NewServer(core.Config{
		Mode:     m,
		Workers:  *workers,
		Batch:    *batch,
		BMLBytes: *bmlMiB << 20,
		Backend:  backend,
	})
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("fwdd: %s mode, %d workers, %d MiB BML, %s backend, listening on %s",
		m, *workers, *bmlMiB, *backendKind, l.Addr())
	if err := srv.Serve(l); err != nil {
		log.Fatal(err)
	}
}
