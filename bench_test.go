// Package repro's root benchmark harness: one benchmark per figure of the
// paper's evaluation section (4-6, 9-13), each reporting the simulated
// sustained throughput as a custom MiB/s metric, plus ablation benchmarks
// for the design choices called out in DESIGN.md. The same series print as
// tables via `go run ./cmd/iofsim -all`.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/bgp"
	"repro/internal/experiments"
	"repro/internal/iofwd"
	"repro/internal/madbench"
	"repro/internal/sim"
)

const mib = 1 << 20

// reportE2E runs one end-to-end configuration per benchmark iteration and
// reports its throughput.
func reportE2E(b *testing.B, cfg experiments.E2EConfig) {
	b.Helper()
	var thr float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunE2E(cfg)
		thr = r.ThroughputMiBps
	}
	b.ReportMetric(thr, "MiB/s")
	b.ReportMetric(0, "ns/op") // virtual-time experiment; wall ns/op is meaningless
}

// BenchmarkFigure4 — collective network streaming CN->ION (writes to
// /dev/null), CIOD and ZOID, swept over pset population. Paper: ~680 MiB/s
// peak at 4-8 CNs, decline beyond 32, ZOID ~2% ahead.
func BenchmarkFigure4(b *testing.B) {
	for _, mech := range []experiments.Mechanism{experiments.CIOD, experiments.ZOID} {
		for _, cns := range []int{1, 4, 16, 64} {
			b.Run(fmt.Sprintf("%s/cn%d", mech, cns), func(b *testing.B) {
				reportE2E(b, experiments.E2EConfig{
					Mech: mech, Psets: 1, CNsPerPset: cns, MsgBytes: mib, Iters: 40,
				})
			})
		}
	}
}

// BenchmarkFigure5 — external network ION->DA nuttcp sweep. Paper: 307 at
// one thread, ~791 at four, lower at eight; DA->DA 1110.
func BenchmarkFigure5(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ion-da/threads%d", threads), func(b *testing.B) {
			var thr float64
			for i := 0; i < b.N; i++ {
				thr = experiments.RunNuttcpIONToDA(threads, mib, 150).ThroughputMiBps
			}
			b.ReportMetric(thr, "MiB/s")
		})
	}
	b.Run("da-da/threads1", func(b *testing.B) {
		var thr float64
		for i := 0; i < b.N; i++ {
			thr = experiments.RunNuttcpDAToDA(1, mib, 150).ThroughputMiBps
		}
		b.ReportMetric(thr, "MiB/s")
	})
}

// BenchmarkFigure6 — end-to-end CN->DA baselines. Paper: CIOD/ZOID sustain
// at most ~420 MiB/s, 66% of achievable, declining with node count.
func BenchmarkFigure6(b *testing.B) {
	for _, mech := range []experiments.Mechanism{experiments.CIOD, experiments.ZOID} {
		for _, cns := range []int{8, 32, 64} {
			b.Run(fmt.Sprintf("%s/cn%d", mech, cns), func(b *testing.B) {
				reportE2E(b, experiments.E2EConfig{
					Mech: mech, Psets: 1, CNsPerPset: cns, DANodes: 1, MsgBytes: mib, Iters: 40,
				})
			})
		}
	}
}

// BenchmarkFigure9 — all four mechanisms vs CN count. Paper at 32 CNs:
// wq +38% over CIOD (83% efficiency), async +57% (~95%).
func BenchmarkFigure9(b *testing.B) {
	for _, mech := range experiments.AllMechanisms {
		for _, cns := range []int{4, 32, 64} {
			b.Run(fmt.Sprintf("%s/cn%d", mech, cns), func(b *testing.B) {
				reportE2E(b, experiments.E2EConfig{
					Mech: mech, Psets: 1, CNsPerPset: cns, DANodes: 1, MsgBytes: mib, Iters: 40, Workers: 4,
				})
			})
		}
	}
}

// BenchmarkFigure10 — message-size sweep at 64 CNs. Paper at 256 KiB:
// efficiencies 64/74/86/95%.
func BenchmarkFigure10(b *testing.B) {
	for _, mech := range experiments.AllMechanisms {
		for _, msg := range []int64{64 * 1024, 256 * 1024, mib, 4 * mib} {
			b.Run(fmt.Sprintf("%s/msg%dK", mech, msg/1024), func(b *testing.B) {
				reportE2E(b, experiments.E2EConfig{
					Mech: mech, Psets: 1, CNsPerPset: 64, DANodes: 1, MsgBytes: msg, Iters: 40, Workers: 4,
				})
			})
		}
	}
}

// BenchmarkFigure11 — worker-pool size sweep. Paper: ~300 MiB/s at one
// worker, peak at four, decline at eight.
func BenchmarkFigure11(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			reportE2E(b, experiments.E2EConfig{
				Mech: experiments.Async, Psets: 1, CNsPerPset: 64, DANodes: 1,
				MsgBytes: mib, Iters: 40, Workers: workers,
			})
		})
	}
}

// BenchmarkFigure12 — weak scaling to 20 DA sinks. Paper: async+wq is
// +53/43/47% over CIOD at 256/512/1024 CNs.
func BenchmarkFigure12(b *testing.B) {
	for _, mech := range experiments.AllMechanisms {
		for _, cns := range []int{256, 512, 1024} {
			b.Run(fmt.Sprintf("%s/cn%d", mech, cns), func(b *testing.B) {
				reportE2E(b, experiments.E2EConfig{
					Mech: mech, Psets: cns / 64, CNsPerPset: 64, DANodes: 20,
					MsgBytes: mib, Iters: 15, Workers: 4,
				})
			})
		}
	}
}

// BenchmarkFigure13 — MADbench2 in I/O mode against the GPFS model. Paper:
// async+wq is +53%/+49% over CIOD at 64/256 nodes.
func BenchmarkFigure13(b *testing.B) {
	for _, mech := range experiments.AllMechanisms {
		mech := mech
		for _, scale := range []struct{ nodes, npix int }{{64, 4096}, {256, 8192}} {
			b.Run(fmt.Sprintf("%s/nodes%d", mech, scale.nodes), func(b *testing.B) {
				var thr float64
				for i := 0; i < b.N; i++ {
					r := madbench.Run(madbench.Config{
						Nodes: scale.nodes, NPix: scale.npix, NBin: 8, Alpha: 1,
						NewForwarder: func(e *sim.Engine, ps *bgp.Pset, p bgp.Params) iofwd.Forwarder {
							return experiments.NewForwarder(e, ps, p, mech, 4, 8)
						},
					})
					thr = r.ThroughputMiBps
				}
				b.ReportMetric(thr, "MiB/s")
			})
		}
	}
}

// --- Ablations (DESIGN.md) ---

// BenchmarkAblationQueueDiscipline — shared FIFO (the paper) vs per-worker
// queues with least-loaded dispatch (the extension the paper suggests).
func BenchmarkAblationQueueDiscipline(b *testing.B) {
	base := experiments.E2EConfig{
		Mech: experiments.Async, Psets: 1, CNsPerPset: 64, DANodes: 1,
		MsgBytes: mib, Iters: 40, Workers: 4,
	}
	b.Run("shared-fifo", func(b *testing.B) { reportE2E(b, base) })
	// LeastLoaded is exercised through the pool config in unit tests; at
	// the machine level the discipline difference is visible in queue
	// imbalance, not throughput, because the sink dominates.
	b.Run("shared-fifo/batch1", func(b *testing.B) {
		cfg := base
		cfg.Batch = 1
		reportE2E(b, cfg)
	})
	// Sharded mirrors the production scheduler (per-worker shards, FD
	// homing, work stealing); same caveat as LeastLoaded about sink-bound
	// throughput, but it validates the model end to end.
	b.Run("sharded", func(b *testing.B) {
		cfg := base
		cfg.Discipline = iofwd.Sharded
		reportE2E(b, cfg)
	})
}

// BenchmarkAblationBatchDepth — the event-loop multiplexing depth (paper:
// "a worker thread dequeues multiple I/O requests").
func BenchmarkAblationBatchDepth(b *testing.B) {
	for _, batch := range []int{1, 4, 8, 32} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			reportE2E(b, experiments.E2EConfig{
				Mech: experiments.Async, Psets: 1, CNsPerPset: 64, DANodes: 1,
				MsgBytes: mib, Iters: 40, Workers: 4, Batch: batch,
			})
		})
	}
}

// BenchmarkAblationStagingMemory — throughput vs the BML cap: once the cap
// falls below the working set, staging degrades toward synchronous
// behaviour (paper: "the I/O operation is blocked until ... sufficient
// memory is available").
func BenchmarkAblationStagingMemory(b *testing.B) {
	for _, mb := range []int64{4, 16, 64, 1536} {
		b.Run(fmt.Sprintf("bml%dMiB", mb), func(b *testing.B) {
			p := bgp.Default()
			p.BMLBytes = mb * mib
			reportE2E(b, experiments.E2EConfig{
				Mech: experiments.Async, Psets: 1, CNsPerPset: 64, DANodes: 1,
				MsgBytes: mib, Iters: 40, Workers: 4, Params: &p,
			})
		})
	}
}

// BenchmarkAblationSocketBuffer — sensitivity of the synchronous baselines
// to the per-connection socket buffer, the overlap they get for free.
func BenchmarkAblationSocketBuffer(b *testing.B) {
	for _, kb := range []int64{128, 256, 512, 1024} {
		b.Run(fmt.Sprintf("zoid/sock%dK", kb), func(b *testing.B) {
			p := bgp.Default()
			p.SockBufBytes = kb * 1024
			reportE2E(b, experiments.E2EConfig{
				Mech: experiments.ZOID, Psets: 1, CNsPerPset: 32, DANodes: 1,
				MsgBytes: mib, Iters: 40, Params: &p,
			})
		})
	}
}
