// Quickstart: run a forwarding server with asynchronous data staging over a
// TCP loopback, write a file through it, observe a deferred-error-free
// round trip, and print the server-side staging statistics plus a telemetry
// snapshot — the same per-stage numbers a production fwdd exports at
// /metrics.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

func main() {
	// A forwarding server in the paper's full configuration: work-queue
	// scheduling with 4 workers plus asynchronous data staging, backed by
	// memory (stand-in for the ION's route to GPFS).
	srv := core.NewServer(core.Config{
		Mode:     core.ModeAsync,
		Workers:  4,
		Batch:    8,
		BMLBytes: 64 << 20,
		Backend:  core.NewMemBackend(),
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	// The compute-node side: every I/O call ships to the server. The zero
	// ClientConfig reproduces the plain, non-resilient client; see the
	// congestion-control example fields on core.ClientConfig.
	ctx := context.Background()
	client, err := core.ClientConfig{}.Dial(ctx, "tcp", l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	f, err := client.Open(ctx, "results/checkpoint-000.dat")
	if err != nil {
		log.Fatal(err)
	}

	record := bytes.Repeat([]byte("science!"), 512) // 4 KiB
	for i := 0; i < 256; i++ {
		if _, err := f.Write(record); err != nil {
			log.Fatalf("write %d: %v", i, err)
		}
	}
	// Writes above were staged: they returned as soon as the server copied
	// them. Sync drains the descriptor and reports any deferred error.
	if err := f.Sync(); err != nil {
		log.Fatalf("sync: %v", err)
	}
	size, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d bytes through the forwarder\n", size)

	back := make([]byte, len(record))
	if _, err := f.ReadAt(back, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back first record, intact: %v\n", bytes.Equal(back, record))
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	st := srv.Stats()
	bml := srv.BMLStats()
	fmt.Printf("server: %d ops, %d staged writes, %d worker batches\n",
		st.Ops, st.StagedWrites, st.WorkerBatch)
	fmt.Printf("BML: %d allocations (%d fresh), peak %d KiB\n",
		bml.Allocs, bml.Fresh, bml.Peak/1024)

	// The telemetry registry holds the same counters plus the per-stage
	// latency distributions of the forwarding path (paper stages: CN→ION
	// receive, queue wait, backend service, reply).
	fmt.Println("\ntelemetry snapshot (excerpt):")
	snaps := srv.Metrics().Snapshot()
	if f := telemetry.Find(snaps, "iofwd_requests_total"); f != nil {
		for _, s := range f.Series {
			if v := *s.Value; v > 0 {
				fmt.Printf("  requests{op=%q} = %d\n", s.Labels["op"], v)
			}
		}
	}
	if f := telemetry.Find(snaps, "iofwd_stage_latency_ns"); f != nil {
		for _, s := range f.Series {
			h := s.Histogram
			if h.Count == 0 {
				continue
			}
			fmt.Printf("  stage %-7s n=%-4d p50=%-10v p99=%-10v max=%v\n",
				s.Labels["stage"], h.Count,
				time.Duration(h.P50), time.Duration(h.P99), time.Duration(h.Max))
		}
	}
	if f := telemetry.Find(snaps, "iofwd_queue_peak_depth"); f != nil {
		fmt.Printf("  queue peak depth = %d\n", *f.Series[0].Value)
	}
	if f := telemetry.Find(snaps, "iofwd_bml_peak_bytes"); f != nil {
		fmt.Printf("  BML peak = %d KiB\n", *f.Series[0].Value/1024)
	}
}
