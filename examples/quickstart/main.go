// Quickstart: run a forwarding server with asynchronous data staging over a
// TCP loopback, write a file through it, observe a deferred-error-free
// round trip, and print the server-side staging statistics.
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"

	"repro/internal/core"
)

func main() {
	// A forwarding server in the paper's full configuration: work-queue
	// scheduling with 4 workers plus asynchronous data staging, backed by
	// memory (stand-in for the ION's route to GPFS).
	srv := core.NewServer(core.Config{
		Mode:     core.ModeAsync,
		Workers:  4,
		Batch:    8,
		BMLBytes: 64 << 20,
		Backend:  core.NewMemBackend(),
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	// The compute-node side: every I/O call ships to the server.
	client, err := core.Dial("tcp", l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	f, err := client.Open("results/checkpoint-000.dat")
	if err != nil {
		log.Fatal(err)
	}

	record := bytes.Repeat([]byte("science!"), 512) // 4 KiB
	for i := 0; i < 256; i++ {
		if _, err := f.Write(record); err != nil {
			log.Fatalf("write %d: %v", i, err)
		}
	}
	// Writes above were staged: they returned as soon as the server copied
	// them. Sync drains the descriptor and reports any deferred error.
	if err := f.Sync(); err != nil {
		log.Fatalf("sync: %v", err)
	}
	size, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d bytes through the forwarder\n", size)

	back := make([]byte, len(record))
	if _, err := f.ReadAt(back, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back first record, intact: %v\n", bytes.Equal(back, record))
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	st := srv.Stats()
	bml := srv.BMLStats()
	fmt.Printf("server: %d ops, %d staged writes, %d worker batches\n",
		st.Ops, st.StagedWrites, st.WorkerBatch)
	fmt.Printf("BML: %d allocations (%d fresh), peak %d KiB\n",
		bml.Allocs, bml.Fresh, bml.Peak/1024)
}
