// Checkpoint: the workload the paper's introduction motivates — a bulk-
// synchronous simulation that periodically dumps state. Ranks alternate
// computation with checkpoint writes through a forwarding server whose
// backend is rate-limited like a shared parallel filesystem, and the run is
// repeated for each server mode so the overlap benefit of asynchronous data
// staging is visible as wall-clock time.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/core"
)

const (
	ranks          = 4
	steps          = 5
	checkpointKiB  = 2048
	computePerStep = 120 * time.Millisecond
	sinkBandwidth  = 64 << 20 // 64 MiB/s shared sink
)

func main() {
	fmt.Printf("checkpointing %d ranks, %d steps, %d KiB per rank per step, sink %d MiB/s\n\n",
		ranks, steps, checkpointKiB, sinkBandwidth>>20)
	for _, mode := range []core.Mode{core.ModeDirect, core.ModeWorkQueue, core.ModeAsync} {
		elapsed := run(mode)
		fmt.Printf("%-10s %7.0f ms total\n", mode, float64(elapsed.Milliseconds()))
	}
	fmt.Println("\nasync staging overlaps the dump with the next compute step, so the")
	fmt.Println("application pays only the copy — the paper's figure-8 design.")
}

func run(mode core.Mode) time.Duration {
	backend := core.NewSinkBackend(core.NewMemBackend(), sinkBandwidth, 0)
	srv := core.NewServer(core.Config{Mode: mode, Workers: 4, BMLBytes: 128 << 20, Backend: backend})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := core.Dial("tcp", l.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			f, err := c.Open(context.Background(), fmt.Sprintf("ckpt/rank%03d.dat", r))
			if err != nil {
				log.Fatal(err)
			}
			state := make([]byte, checkpointKiB*1024)
			for s := 0; s < steps; s++ {
				time.Sleep(computePerStep) // the simulation's work
				if _, err := f.Write(state); err != nil {
					log.Fatalf("rank %d step %d: %v", r, s, err)
				}
			}
			// The final checkpoint must be durable before the job exits.
			if err := f.Sync(); err != nil {
				log.Fatalf("rank %d sync: %v", r, err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("rank %d close: %v", r, err)
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}
