// In-situ analysis streaming: the paper's second motivating workload —
// "data must travel down a similar path when streamed off the system, such
// as when performing visual analysis concurrently with the simulation."
// Producer ranks stream time-step field data through the forwarder to an
// analysis sink that consumes at a fixed rate (a visualization cluster
// ingesting over the external network); the example reports the achieved
// frame rate per server mode.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/core"
)

const (
	producers  = 4
	frames     = 6
	frameBytes = 2 << 20 // 2 MiB field slab per producer per time step
	sinkRate   = 64 << 20
)

func main() {
	fmt.Printf("in-situ stream: %d producers x %d frames of %d MiB, analysis ingest %d MiB/s\n\n",
		producers, frames, frameBytes>>20, sinkRate>>20)
	for _, mode := range []core.Mode{core.ModeDirect, core.ModeWorkQueue, core.ModeAsync} {
		elapsed, fps := run(mode)
		fmt.Printf("%-10s %7.0f ms  (%.1f aggregate frames/s)\n", mode, float64(elapsed.Milliseconds()), fps)
	}
}

func run(mode core.Mode) (time.Duration, float64) {
	// The analysis cluster: consumes data at its ingest bandwidth.
	backend := core.NewSinkBackend(core.NewMemBackend(), sinkRate, 200*time.Microsecond)
	srv := core.NewServer(core.Config{Mode: mode, Workers: 4, BMLBytes: 256 << 20, Backend: backend})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	start := time.Now()
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		pr := pr
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := core.Dial("tcp", l.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			stream, err := c.Open(context.Background(), fmt.Sprintf("stream/producer%02d", pr))
			if err != nil {
				log.Fatal(err)
			}
			slab := make([]byte, frameBytes)
			for fr := 0; fr < frames; fr++ {
				// Each time step: advance the field, then ship it out.
				simulateTimeStep(slab, fr)
				if _, err := stream.Write(slab); err != nil {
					log.Fatalf("producer %d frame %d: %v", pr, fr, err)
				}
			}
			if err := stream.Close(); err != nil {
				log.Fatalf("producer %d close: %v", pr, err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	return elapsed, float64(producers*frames) / elapsed.Seconds()
}

// simulateTimeStep stands in for the solver: it advances the field for a
// fixed compute budget and touches the whole slab. The compute is what
// asynchronous staging overlaps with the outbound stream.
func simulateTimeStep(slab []byte, step int) {
	time.Sleep(100 * time.Millisecond)
	for i := range slab {
		slab[i] = byte(i + step)
	}
}
