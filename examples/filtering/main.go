// Filtering: the paper's future-work scenario (Section VII) — "offload data
// filtering onto the I/O forwarding nodes in order to reduce the amount of
// data written to storage as well as to facilitate in situ analytics."
//
// Producer ranks stream full-resolution float64 fields through the
// forwarder; the forwarding node runs an in-situ filter chain that (a)
// extracts running min/max statistics from the passing data and (b)
// subsamples it 4:1 before it reaches storage. The application writes full
// frames and never knows.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"net"

	"repro/internal/core"
)

const (
	frames       = 8
	valuesPerRow = 4096 // one frame = 4096 float64 samples = 32 KiB
)

func main() {
	backend := core.NewMemBackend()
	stats := core.NewMinMaxFilter()
	chain := core.NewFilterChain(
		stats, // observe first, at full resolution
		&core.SubsampleFilter{RecordBytes: 8, Keep1InN: 4},
	)
	srv := core.NewServer(core.Config{
		Mode:    core.ModeAsync,
		Workers: 2,
		Backend: backend,
		Filters: chain,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	client, err := core.Dial("tcp", l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	f, err := client.Open(context.Background(), "field/temperature")
	if err != nil {
		log.Fatal(err)
	}

	frame := make([]byte, 8*valuesPerRow)
	var wrote int
	for step := 0; step < frames; step++ {
		for i := 0; i < valuesPerRow; i++ {
			// A travelling wave with growing amplitude.
			v := float64(step+1) * math.Sin(float64(i)/64+float64(step))
			binary.LittleEndian.PutUint64(frame[i*8:], math.Float64bits(v))
		}
		n, err := f.Write(frame)
		if err != nil {
			log.Fatalf("step %d: %v", step, err)
		}
		wrote += n
	}
	if err := f.Sync(); err != nil {
		log.Fatal(err)
	}
	stored, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	lo, hi, n := stats.Range("field/temperature")
	in, out := chain.Reduction()
	fmt.Printf("application wrote : %d bytes (%d frames)\n", wrote, frames)
	fmt.Printf("storage received  : %d bytes (%.0f%% reduction at the ION)\n",
		stored, 100*(1-float64(out)/float64(in)))
	fmt.Printf("in-situ analytics : %d samples observed, range [%.3f, %.3f]\n", n, lo, hi)
}
