// Simulator tour: drive the discrete-event BG/P model directly through the
// public experiment API — sweep the four forwarding mechanisms at one
// operating point and print measured throughput next to the paper's
// reference values for figure 9.
package main

import (
	"fmt"

	"repro/internal/experiments"
)

func main() {
	const cns, msg = 32, 1 << 20
	fmt.Printf("end-to-end forwarding, %d CNs, 1 MiB messages, 4 workers\n\n", cns)
	paper := map[experiments.Mechanism]float64{
		experiments.CIOD:  391, // derived from figure 9's quoted improvements
		experiments.ZOID:  439,
		experiments.WQ:    540, // 83% of ~650 MiB/s achievable
		experiments.Async: 617, // ~95%
	}
	fmt.Printf("%-16s %12s %12s\n", "mechanism", "measured", "paper")
	for _, mech := range experiments.AllMechanisms {
		r := experiments.RunE2E(experiments.E2EConfig{
			Mech:       mech,
			Psets:      1,
			CNsPerPset: cns,
			DANodes:    1,
			MsgBytes:   msg,
			Iters:      100,
			Workers:    4,
		})
		fmt.Printf("%-16s %9.0f MiB/s %9.0f MiB/s\n", mech, r.ThroughputMiBps, paper[mech])
	}
	fmt.Println("\nEvery run is deterministic; see cmd/iofsim for the full figure sweeps.")
}
